package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckAllocsFailsLoudly pins the -check contract: a missing,
// corrupt, or degenerate -against report must fail the gate with a clear
// error, never let it silently pass; a genuine regression trips it; a
// measurement within the envelope passes.
func TestCheckAllocsFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"current": {"allocs_per_event": 1e-5}}`)
	corrupt := write("corrupt.json", `{"current": {"allocs_per_event":`)
	zero := write("zero.json", `{"current": {"allocs_per_event": 0}}`)
	empty := write("empty.json", `{}`)

	cases := []struct {
		name    string
		cur     metrics
		against string
		wantErr string
	}{
		{"missing file", metrics{AllocsPerEvent: 1e-5}, filepath.Join(dir, "nope.json"), "reading recorded report"},
		{"corrupt json", metrics{AllocsPerEvent: 1e-5}, corrupt, "parsing"},
		{"zero recorded", metrics{AllocsPerEvent: 1e-5}, zero, "non-positive"},
		{"empty report", metrics{AllocsPerEvent: 1e-5}, empty, "non-positive"},
		{"regression", metrics{AllocsPerEvent: 1.1e-4}, good, "regressed"},
		{"pass", metrics{AllocsPerEvent: 2e-5}, good, ""},
		{"pass at limit", metrics{AllocsPerEvent: 9.9e-5}, good, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkAllocs(tc.cur, tc.against)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected gate failure: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("gate passed silently, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckSpeedGate pins the ns/event gate: missing or degenerate
// recorded values fail loudly, a regression beyond tolerance trips it,
// and measurements within (or at) the envelope pass.
func TestCheckSpeedGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"current": {"ns_per_event": 100}}`)
	zero := write("zero.json", `{"current": {"ns_per_event": 0}}`)
	corrupt := write("corrupt.json", `{"current": {"ns_per_event":`)

	cases := []struct {
		name    string
		cur     metrics
		against string
		wantErr string
	}{
		{"missing file", metrics{NsPerEvent: 100}, filepath.Join(dir, "nope.json"), "reading recorded report"},
		{"corrupt json", metrics{NsPerEvent: 100}, corrupt, "parsing"},
		{"zero recorded", metrics{NsPerEvent: 100}, zero, "non-positive"},
		{"regression", metrics{NsPerEvent: 116}, good, "regressed"},
		{"pass", metrics{NsPerEvent: 100}, good, ""},
		{"pass at limit", metrics{NsPerEvent: 114.9}, good, ""},
		{"pass improved", metrics{NsPerEvent: 40}, good, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkSpeed(tc.cur, tc.against, 0.15)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected gate failure: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("gate passed silently, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseWorkerList covers the -engine-workers flag parsing.
func TestParseWorkerList(t *testing.T) {
	got, err := parseWorkerList("1,2,4,8")
	if err != nil || len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Fatalf("parseWorkerList(1,2,4,8) = %v, %v", got, err)
	}
	if ws, err := parseWorkerList(""); err != nil || ws != nil {
		t.Fatalf("empty list: %v, %v", ws, err)
	}
	for _, bad := range []string{"0", "a", "1,,2", "-3"} {
		if _, err := parseWorkerList(bad); err == nil {
			t.Errorf("parseWorkerList(%q) accepted", bad)
		}
	}
}
