// Command enginebench measures the simulation engine's headline
// microbenchmark — one full Q10 ATA reliable broadcast, the same
// workload as BenchmarkEngineQ10ATA — and records the numbers as JSON
// (events/sec, ns/event, allocs/event), alongside the recorded
// pre-flat-array baseline for comparison. `make bench-engine` writes
// BENCH_engine.json at the repository root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// metrics is one engine measurement over the Q10 ATA workload.
type metrics struct {
	EventsPerRun   int     `json:"events_per_run"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// baseline is the seed engine (map-addressed links, container/heap event
// queue, per-packet route copies) measured on this workload before the
// flat-array rewrite.
var baseline = metrics{
	EventsPerRun:   10480640,
	EventsPerSec:   1.98e6,
	NsPerEvent:     504.7,
	AllocsPerEvent: 2.0,
	BytesPerEvent:  96.4,
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	GoMaxProc int     `json:"gomaxprocs"`
	Runs      int     `json:"runs"`
	Current   metrics `json:"current"`
	Baseline  metrics `json:"baseline_pre_flat_array"`
	Speedup   float64 `json:"speedup_events_per_sec"`
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (\"-\" for stdout)")
	flag.Parse()

	g := topology.Hypercube(10)
	cycles, err := hamilton.Hypercube(10)
	if err != nil {
		fail(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		fail(err)
	}
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

	var events int
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := x.Run(core.Config{Eta: 2, Params: p, SkipCopies: true})
			if err != nil {
				b.Fatal(err)
			}
			if res.Contentions != 0 {
				b.Fatal("contention in dedicated run")
			}
			events = res.Events
		}
	})

	total := float64(events) * float64(r.N)
	cur := metrics{
		EventsPerRun:   events,
		EventsPerSec:   total / r.T.Seconds(),
		NsPerEvent:     float64(r.T.Nanoseconds()) / total,
		AllocsPerEvent: float64(r.MemAllocs) / total,
		BytesPerEvent:  float64(r.MemBytes) / total,
	}
	rep := report{
		Benchmark: "EngineQ10ATA",
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GoMaxProc: runtime.GOMAXPROCS(0),
		Runs:      r.N,
		Current:   cur,
		Baseline:  baseline,
		Speedup:   cur.EventsPerSec / baseline.EventsPerSec,
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("EngineQ10ATA: %.3g events/s, %.1f ns/event, %.2g allocs/event (%.2fx baseline) -> %s\n",
		cur.EventsPerSec, cur.NsPerEvent, cur.AllocsPerEvent, rep.Speedup, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "enginebench:", err)
	os.Exit(1)
}
