// Command enginebench measures the simulation engine's headline
// microbenchmark — one full Q10 ATA reliable broadcast, the same
// workload as BenchmarkEngineQ10ATA — and records the numbers as JSON
// (events/sec, ns/event, allocs/event), alongside the recorded
// pre-flat-array baseline for comparison. `make bench-engine` writes
// BENCH_engine.json at the repository root.
//
// -quick measures a single run instead of a calibrated benchmark loop
// (seconds, for CI); -check compares the measurement against the values
// recorded in the -against file and exits non-zero on regression:
// allocs/event beyond 10x recorded (the engine's allocation-free event
// loop is an oracle this smoke keeps honest), or ns/event beyond
// 1+(-tolerance) of recorded (re-measured up to twice, best-of, to damp
// single-run noise). The nil-observer fast path is exactly what the
// headline numbers measure; a second measurement with a counting
// observer attached reports the per-event hook cost, and -check
// additionally requires the hooked run to stay allocation-free (the
// hook hands out stack values, never heap).
//
// Every measurement also records the live heap after the run and its
// per-node share, so the Q16 memory footprint is tracked, not guessed.
// Scaling-series points record the GOMAXPROCS they ran under; a point
// with fewer cores than workers is annotated "cores_limited" (its
// speedup measures core starvation, not the engine) and -check never
// grades speedup on it. When the host has enough cores, GOMAXPROCS is
// raised to the worker count for the point's duration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// metrics is one engine measurement over the Q10 ATA workload.
type metrics struct {
	EventsPerRun   int64   `json:"events_per_run"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// PeakHeapBytes is the live heap right after the run (GC'd before,
	// read after — scratch, compiled routes, and results all still
	// reachable), and HeapBytesPerNode its per-node share: the figure to
	// extrapolate a Q14/Q16 footprint from.
	PeakHeapBytes    uint64  `json:"peak_heap_bytes,omitempty"`
	HeapBytesPerNode float64 `json:"heap_bytes_per_node,omitempty"`
}

// baseline is the seed engine (map-addressed links, container/heap event
// queue, per-packet route copies) measured on this workload before the
// flat-array rewrite.
var baseline = metrics{
	EventsPerRun:   10480640,
	EventsPerSec:   1.98e6,
	NsPerEvent:     504.7,
	AllocsPerEvent: 2.0,
	BytesPerEvent:  96.4,
}

type report struct {
	Benchmark string  `json:"benchmark"`
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	GoMaxProc int     `json:"gomaxprocs"`
	Runs      int     `json:"runs"`
	Current   metrics `json:"current"`
	Baseline  metrics `json:"baseline_pre_flat_array"`
	Speedup   float64 `json:"speedup_events_per_sec"`
	// Hooked is the same workload with a counting observer attached —
	// the per-hop trace hook's worst-case cost (one interface call per
	// event, zero heap traffic). HookOverheadNs is hooked minus nil-hook
	// ns/event.
	Hooked         *metrics `json:"hooked_observer,omitempty"`
	HookOverheadNs float64  `json:"hook_overhead_ns_per_event,omitempty"`
	// EngineWorkersSeries records the same workload under the sharded
	// engine at each requested worker count (-engine-workers) — the
	// multi-core scaling curve behind the paper's Q16 headline. Each
	// point re-checks that the run's event count matches the sequential
	// measurement, so the series doubles as a determinism smoke.
	EngineWorkersSeries []workerPoint `json:"engine_workers_series,omitempty"`
}

// workerPoint is one point of the sharded-engine scaling series.
type workerPoint struct {
	Workers      int     `json:"workers"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	// GoMaxProcs is the GOMAXPROCS this point actually ran under (raised
	// to Workers when the host has the cores). CoresLimited marks points
	// with fewer cores than workers: their Speedup measures core
	// starvation, not engine scaling, and must not be graded.
	GoMaxProcs   int  `json:"gomaxprocs"`
	CoresLimited bool `json:"cores_limited,omitempty"`
}

// parseWorkerList parses the -engine-workers flag: a comma-separated
// list of positive worker counts, empty meaning no series.
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("enginebench: bad -engine-workers entry %q (want positive integers)", f)
		}
		out = append(out, w)
	}
	return out, nil
}

// countObserver is the cheapest possible live sink: the measured hooked
// cost is then the hook dispatch itself, not sink work.
type countObserver struct {
	hops, dels int
}

func (c *countObserver) OnHop(simnet.HopEvent)     { c.hops++ }
func (c *countObserver) OnDeliver(simnet.Delivery) { c.dels++ }

func main() {
	out := flag.String("o", "BENCH_engine.json", "output file (\"-\" for stdout)")
	quick := flag.Bool("quick", false, "single measured run instead of a calibrated benchmark loop")
	check := flag.Bool("check", false, "fail if allocs/event exceeds 10x, or ns/event exceeds 1+tolerance of, the values recorded in -against")
	tolerance := flag.Float64("tolerance", 0.15, "ns/event regression tolerance for -check (0.15 = fail beyond +15% of recorded)")
	against := flag.String("against", "BENCH_engine.json", "recorded report -check compares against")
	workerList := flag.String("engine-workers", "", "comma-separated sharded-engine worker counts to record as a scaling series (e.g. 1,2,4,8)")
	flag.Parse()
	workerCounts, err := parseWorkerList(*workerList)
	if err != nil {
		fail(err)
	}

	g := topology.MustHypercube(10)
	cycles, err := hamilton.Hypercube(10)
	if err != nil {
		fail(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		fail(err)
	}
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}

	runs := 1
	nodes := float64(g.N())
	measure := func(obs simnet.Observer, workers int) metrics {
		cfg := core.Config{Eta: 2, Params: p, SkipCopies: true, Observe: obs, EngineWorkers: workers}
		if *quick || workers > 1 {
			// Worker-series points are always single measured runs: the
			// series is a scaling curve, not an allocation gate, and a
			// calibrated loop per worker count would multiply the wall
			// clock by the series length.
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			res, err := x.Run(cfg)
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				fail(err)
			}
			if res.Contentions != 0 {
				fail(fmt.Errorf("contention in dedicated run"))
			}
			total := float64(res.Events)
			return metrics{
				EventsPerRun:     res.Events,
				EventsPerSec:     total / elapsed.Seconds(),
				NsPerEvent:       float64(elapsed.Nanoseconds()) / total,
				AllocsPerEvent:   float64(ms1.Mallocs-ms0.Mallocs) / total,
				BytesPerEvent:    float64(ms1.TotalAlloc-ms0.TotalAlloc) / total,
				PeakHeapBytes:    ms1.HeapAlloc,
				HeapBytesPerNode: float64(ms1.HeapAlloc) / nodes,
			}
		}
		var events int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := x.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Contentions != 0 {
					b.Fatal("contention in dedicated run")
				}
				events = res.Events
			}
		})
		if obs == nil {
			runs = r.N
		}
		// One more instrumented run for the memory figures: the calibrated
		// loop can't observe live heap, and a single extra run costs a
		// fraction of the loop it just finished.
		var msEnd runtime.MemStats
		runtime.GC()
		if _, err := x.Run(cfg); err != nil {
			fail(err)
		}
		runtime.ReadMemStats(&msEnd)
		total := float64(events) * float64(r.N)
		return metrics{
			EventsPerRun:     events,
			EventsPerSec:     total / r.T.Seconds(),
			NsPerEvent:       float64(r.T.Nanoseconds()) / total,
			AllocsPerEvent:   float64(r.MemAllocs) / total,
			BytesPerEvent:    float64(r.MemBytes) / total,
			PeakHeapBytes:    msEnd.HeapAlloc,
			HeapBytesPerNode: float64(msEnd.HeapAlloc) / nodes,
		}
	}
	cur := measure(nil, 1)
	counter := &countObserver{}
	hooked := measure(counter, 1)
	if counter.hops == 0 || counter.dels == 0 {
		fail(fmt.Errorf("hooked run observed %d hops, %d deliveries", counter.hops, counter.dels))
	}
	rep := report{
		Benchmark:      "EngineQ10ATA",
		Date:           time.Now().UTC().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		GoMaxProc:      runtime.GOMAXPROCS(0),
		Runs:           runs,
		Current:        cur,
		Baseline:       baseline,
		Speedup:        cur.EventsPerSec / baseline.EventsPerSec,
		Hooked:         &hooked,
		HookOverheadNs: hooked.NsPerEvent - cur.NsPerEvent,
	}
	for _, w := range workerCounts {
		// Give the point the cores it asks for when the host has them;
		// otherwise run core-starved and say so, instead of recording a
		// "speedup" that actually measures starvation.
		prev := runtime.GOMAXPROCS(0)
		gmp := prev
		if w > gmp && runtime.NumCPU() >= w {
			runtime.GOMAXPROCS(w)
			gmp = w
		}
		m := measure(nil, w)
		runtime.GOMAXPROCS(prev)
		if m.EventsPerRun != cur.EventsPerRun {
			fail(fmt.Errorf("engine-workers=%d processed %d events, sequential %d — sharded run diverged",
				w, m.EventsPerRun, cur.EventsPerRun))
		}
		rep.EngineWorkersSeries = append(rep.EngineWorkersSeries, workerPoint{
			Workers:      w,
			EventsPerSec: m.EventsPerSec,
			NsPerEvent:   m.NsPerEvent,
			Speedup:      m.EventsPerSec / cur.EventsPerSec,
			GoMaxProcs:   gmp,
			CoresLimited: gmp < w,
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("EngineQ10ATA: %.3g events/s, %.1f ns/event, %.2g allocs/event (%.2fx baseline) -> %s\n",
		cur.EventsPerSec, cur.NsPerEvent, cur.AllocsPerEvent, rep.Speedup, *out)
	fmt.Printf("observer hook: %.1f ns/event hooked (%+.1f ns/event vs nil hook), %.2g allocs/event\n",
		hooked.NsPerEvent, rep.HookOverheadNs, hooked.AllocsPerEvent)
	fmt.Printf("memory: %.1f MiB live heap after run, %.0f bytes/node\n",
		float64(cur.PeakHeapBytes)/(1<<20), cur.HeapBytesPerNode)
	for _, pt := range rep.EngineWorkersSeries {
		note := ""
		if pt.CoresLimited {
			note = fmt.Sprintf(" [cores_limited: %d workers on GOMAXPROCS=%d]", pt.Workers, pt.GoMaxProcs)
		}
		fmt.Printf("engine-workers=%d: %.3g events/s, %.1f ns/event (%.2fx sequential)%s\n",
			pt.Workers, pt.EventsPerSec, pt.NsPerEvent, pt.Speedup, note)
	}

	if *check {
		if err := checkAllocs(cur, *against); err != nil {
			fail(err)
		}
		// The hook contract: observing adds dispatch time, never heap
		// traffic. Gate the hooked run against the same recorded
		// nil-hook envelope.
		if err := checkAllocs(hooked, *against); err != nil {
			fail(fmt.Errorf("with observer attached: %w", err))
		}
		// ns/event gate, best-of-3 against single-run noise: only if the
		// first measurement misses the tolerance do the (expensive)
		// retries run.
		best := cur
		for retry := 0; checkSpeed(best, *against, *tolerance) != nil && retry < 2; retry++ {
			if m := measure(nil, 1); m.NsPerEvent < best.NsPerEvent {
				best = m
			}
		}
		if err := checkSpeed(best, *against, *tolerance); err != nil {
			fail(err)
		}
		// Scaling-series grade: a 1-worker sharded run may pay at most
		// modest overhead vs sequential, and a multi-worker point that
		// has its cores must not lose to sequential. Core-starved points
		// measure the host, not the engine — skipped, loudly.
		for _, pt := range rep.EngineWorkersSeries {
			if pt.CoresLimited {
				fmt.Printf("enginebench: engine-workers=%d speedup %.2fx not graded (cores_limited)\n",
					pt.Workers, pt.Speedup)
				continue
			}
			floor := 1.0
			if pt.Workers == 1 {
				floor = 0.85 // the ≤10% overhead target, plus single-run noise margin
			}
			if pt.Speedup < floor {
				fail(fmt.Errorf("check: engine-workers=%d speedup %.2fx below %.2fx floor at GOMAXPROCS=%d",
					pt.Workers, pt.Speedup, floor, pt.GoMaxProcs))
			}
		}
		fmt.Printf("enginebench: allocs/event %.3g nil-hook, %.3g hooked — both within 10x of recorded — ok\n",
			cur.AllocsPerEvent, hooked.AllocsPerEvent)
		fmt.Printf("enginebench: %.1f ns/event within +%.0f%% of recorded — ok\n",
			best.NsPerEvent, *tolerance*100)
	}
}

// checkSpeed is the wall-clock regression gate: the measured ns/event
// must stay within 1+tolerance of the recorded report's value. Unlike
// the allocation gate this tracks real time, so callers damp single-run
// noise by re-measuring before failing.
func checkSpeed(cur metrics, path string, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("check: reading recorded report: %w", err)
	}
	var rec report
	if err := json.Unmarshal(buf, &rec); err != nil {
		return fmt.Errorf("check: parsing %s: %w", path, err)
	}
	if rec.Current.NsPerEvent <= 0 {
		return fmt.Errorf("check: %s records non-positive ns/event %g", path, rec.Current.NsPerEvent)
	}
	limit := (1 + tolerance) * rec.Current.NsPerEvent
	if cur.NsPerEvent > limit {
		return fmt.Errorf("check: ns/event regressed: measured %.1f > limit %.1f (recorded %.1f +%.0f%% in %s)",
			cur.NsPerEvent, limit, rec.Current.NsPerEvent, tolerance*100, path)
	}
	return nil
}

// checkAllocs is the regression gate: the measured allocs/event must
// stay within 10x of the recorded report's value. The flat-array engine
// allocates only per-run scratch, so a leak into the per-event hot path
// multiplies this figure by orders of magnitude and trips the gate long
// before it shows up in wall-clock noise.
func checkAllocs(cur metrics, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("check: reading recorded report: %w", err)
	}
	var rec report
	if err := json.Unmarshal(buf, &rec); err != nil {
		return fmt.Errorf("check: parsing %s: %w", path, err)
	}
	if rec.Current.AllocsPerEvent <= 0 {
		return fmt.Errorf("check: %s records non-positive allocs/event %g", path, rec.Current.AllocsPerEvent)
	}
	limit := 10 * rec.Current.AllocsPerEvent
	if cur.AllocsPerEvent > limit {
		return fmt.Errorf("check: allocs/event regressed: measured %g > limit %g (10x recorded %g in %s)",
			cur.AllocsPerEvent, limit, rec.Current.AllocsPerEvent, path)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "enginebench:", err)
	os.Exit(1)
}
