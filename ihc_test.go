package ihc

import (
	"testing"

	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func TestFacadeQuickstart(t *testing.T) {
	x, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(Config{Eta: 2, Params: DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contentions != 0 {
		t.Fatalf("contentions = %d", res.Contentions)
	}
	if err := res.Copies.VerifyATA(4); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want := 2 * (p.TauS + Time(p.Mu)*p.Alpha + 14*p.Alpha)
	if res.Finish != want {
		t.Fatalf("finish = %d, want %d", res.Finish, want)
	}
}

func TestFacadeFamilies(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*IHC, error)
		gamma int
	}{
		{"Q5", func() (*IHC, error) { return NewHypercube(5) }, 4},
		{"SQ5", func() (*IHC, error) { return NewSquareTorus(5) }, 4},
		{"H3", func() (*IHC, error) { return NewHexMesh(3) }, 6},
	} {
		x, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if x.Gamma() != tc.gamma {
			t.Fatalf("%s: γ = %d, want %d", tc.name, x.Gamma(), tc.gamma)
		}
	}
}

func TestFacadeRejectsBadSizes(t *testing.T) {
	if _, err := NewHypercube(1); err == nil {
		t.Fatal("Q1 accepted")
	}
	if _, err := NewSquareTorus(2); err == nil {
		t.Fatal("SQ2 accepted")
	}
	if _, err := NewHexMesh(1); err == nil {
		t.Fatal("H1 accepted")
	}
	if _, err := New(topology.Complete(6)); err == nil {
		t.Fatal("K6 accepted without cycles")
	}
}

func TestNewWithCyclesCustomNetwork(t *testing.T) {
	// A 6-cycle is 2-regular with one HC: class Λ with γ = 2.
	g := topology.MustCycle(6)
	x, err := NewWithCycles(g, []Cycle{{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Run(Config{Eta: 1, Params: Params{TauS: 10, Alpha: 1, Mu: 1, Mode: simnet.VirtualCutThrough}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Copies.VerifyATA(2); err != nil {
		t.Fatal(err)
	}
}

func TestHeadlineParams(t *testing.T) {
	p := HeadlineParams()
	if p.TauS != 500_000 || p.Alpha != 20 || p.Mu != 2 {
		t.Fatalf("headline params = %+v", p)
	}
}

// IHC on a 3-dimensional torus: class Λ with γ = 6, contention-free, the
// Table II closed form, and six copies delivered everywhere.
func TestFacadeTorusND(t *testing.T) {
	x, err := NewTorusND(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x.Gamma() != 6 {
		t.Fatalf("γ = %d, want 6", x.Gamma())
	}
	p := DefaultParams()
	res, err := x.Run(Config{Eta: 2, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contentions != 0 {
		t.Fatalf("contentions = %d", res.Contentions)
	}
	want := 2 * (p.TauS + Time(p.Mu)*p.Alpha + Time(64-2)*p.Alpha)
	if res.Finish != want {
		t.Fatalf("finish = %d, want %d", res.Finish, want)
	}
	if err := res.Copies.VerifyATA(6); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTorusNDRejectsBadDims(t *testing.T) {
	if _, err := NewTorusND(); err == nil {
		t.Fatal("no dims accepted")
	}
	if _, err := NewTorusND(4, 2); err == nil {
		t.Fatal("dim 2 accepted")
	}
	if _, err := NewTorusND(4, 4, 3); err == nil {
		t.Fatal("unsupported mix silently accepted")
	}
}
