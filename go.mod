module ihc

go 1.22
