// Distributed diagnosis of faulty processors — another of the paper's
// motivating applications (Section I cites Yang & Masson's distributed
// diagnosis algorithm).
//
// Every node tests its neighbors (a PMC-style syndrome: fault-free
// testers report their neighbors' true status, faulty testers report
// garbage) and then uses the IHC ATA reliable broadcast to give every
// node the complete syndrome. Each node independently decodes the same
// global syndrome, so all fault-free nodes arrive at the same diagnosis —
// and with t below the diagnosability bound, that diagnosis is exact.
package main

import (
	"fmt"
	"log"
	"sort"

	"ihc"
	"ihc/internal/fault"
	"ihc/internal/topology"
)

const (
	hexSize = 3 // H3: the 19-node HARTS configuration, degree 6
	tFaults = 2 // faulty units; H3 is t-diagnosable for t <= 6 under PMC
)

func main() {
	x, err := ihc.NewHexMesh(hexSize)
	if err != nil {
		log.Fatal(err)
	}
	g := x.Graph()
	n := g.N()

	plan, err := fault.RandomNodeFaults(n, tFaults, fault.Byzantine, 11)
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]bool, n) // true = faulty
	for _, v := range plan.FaultyNodes() {
		truth[v] = true
	}
	fmt.Printf("network %s (HARTS configuration), actual faulty set: %v\n", g, plan.FaultyNodes())

	// Local testing phase: syndrome[u][i] is u's verdict on its i-th
	// neighbor. Fault-free testers are accurate; faulty testers lie
	// deterministically-arbitrarily.
	syndrome := make([][]bool, n)
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(topology.Node(u))
		syndrome[u] = make([]bool, len(nbrs))
		for i, w := range nbrs {
			if truth[u] {
				syndrome[u][i] = (u+int(w)+i)%2 == 0 // garbage
			} else {
				syndrome[u][i] = truth[w]
			}
		}
	}

	// Dissemination phase: every node broadcasts its test results to
	// every other node with the IHC algorithm. The γ = 6 redundant
	// copies make the dissemination itself reliable.
	params := ihc.DefaultParams()
	params.Mu = 1 // single-buffer packets: η = μ = 1, the optimal regime
	res, err := x.Run(ihc.Config{Eta: 1, Params: params})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("syndrome disseminated: %d copies delivered in %d ticks, %d contentions\n",
		res.Deliveries, res.Finish, res.Contentions)

	// Decoding phase: every fault-free node runs the same decoder on the
	// same global syndrome. Decoder: hypothesize each candidate fault
	// set of size <= t (greedy: a unit is suspect if any fault-free-
	// hypothesized tester accuses it); here we use the classic
	// consistency check — find the unique fault set of size <= t
	// consistent with the syndrome.
	diagnosed := decode(g, syndrome, tFaults)
	fmt.Printf("every node decodes the faulty set as: %v\n", diagnosed)

	want := fmt.Sprint(plan.FaultyNodes())
	if fmt.Sprint(diagnosed) != want {
		log.Fatalf("diagnosis %v != actual %v", diagnosed, plan.FaultyNodes())
	}
	fmt.Println("diagnosis exact and identical at all fault-free nodes")
}

// decode finds the unique fault set of size <= t consistent with the PMC
// syndrome: testers outside the set must be accurate about every
// neighbor. It searches subsets in increasing size (n is small).
func decode(g *topology.Graph, syndrome [][]bool, t int) []topology.Node {
	n := g.N()
	var best []topology.Node
	var try func(start int, chosen []int) bool
	consistent := func(faulty map[int]bool) bool {
		for u := 0; u < n; u++ {
			if faulty[u] {
				continue // faulty testers may say anything
			}
			for i, w := range g.Neighbors(topology.Node(u)) {
				if syndrome[u][i] != faulty[int(w)] {
					return false
				}
			}
		}
		return true
	}
	try = func(start int, chosen []int) bool {
		if len(chosen) <= t {
			set := make(map[int]bool, len(chosen))
			for _, v := range chosen {
				set[v] = true
			}
			if consistent(set) {
				best = make([]topology.Node, len(chosen))
				for i, v := range chosen {
					best[i] = topology.Node(v)
				}
				return true
			}
		}
		if len(chosen) == t {
			return false
		}
		for v := start; v < n; v++ {
			if try(v+1, append(chosen, v)) {
				return true
			}
		}
		return false
	}
	if !try(0, nil) {
		log.Fatal("no consistent fault set within t — diagnosability exceeded")
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}
