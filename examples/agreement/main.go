// Byzantine agreement with signed messages over ATA reliable broadcast —
// the paper's primary motivation (Section I cites Lamport/Shostak/Pease
// and Dolev, and Rivest et al. for signatures).
//
// Every node proposes a value and signs it; the IHC ATA reliable
// broadcast delivers γ copies of every proposal to every node over
// edge-disjoint Hamiltonian-cycle paths. Faulty relays corrupt what they
// forward — but cannot forge signatures — and faulty proposers may be
// two-faced. Each fault-free node discards copies whose signature fails
// and decides on the signed-consistent value per proposer; the example
// checks interactive consistency: all fault-free nodes decide the same
// vector, with the correct value in every fault-free proposer's slot.
package main

import (
	"fmt"
	"log"

	"ihc"
	"ihc/internal/fault"
	"ihc/internal/reliable"
	"ihc/internal/topology"
)

const (
	cubeDim = 4 // Q4: 16 nodes, γ = 4
	tFaults = 3 // up to γ-1 = 3 faulty nodes with signed messages
)

func main() {
	x, err := ihc.NewHypercube(cubeDim)
	if err != nil {
		log.Fatal(err)
	}
	n := x.N()
	gamma := x.Gamma()
	kr := reliable.NewKeyring(n, 2024)

	plan, err := fault.RandomNodeFaults(n, tFaults, fault.Corrupt, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network %s, γ = %d, signed messages, %d corrupt relays: %v\n",
		x.Graph(), gamma, tFaults, plan.FaultyNodes())
	fmt.Printf("signed-message fault bound: t <= γ-1 = %d (unsigned Dolev bound would be %d)\n",
		reliable.SignedBound(gamma), reliable.DolevBound(gamma, n))

	// Run the ATA broadcast under the fault plan and grade it with the
	// signed voter at every fault-free receiver.
	out, err := reliable.EvaluateIHC(x, plan, true, kr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free ordered pairs: %d; decided correctly: %d; wrong: %d; undecided: %d\n",
		out.Pairs, out.Correct, out.Wrong, out.Missing)

	if out.Wrong != 0 {
		log.Fatal("safety violated: a fault-free node decided a forged value")
	}
	fmt.Println("safety holds: no fault-free node ever decided a forged value —")
	fmt.Println("corrupted copies are rejected by signature")
	if out.Missing > 0 {
		// The γ Hamiltonian-cycle paths between a pair are edge-disjoint
		// but not node-disjoint across cycles, so adversarial relay
		// placements can occasionally cut every path (the paper:
		// "the probability of correct operation is high" beyond the
		// guaranteed single fault). Undecided pairs detect this and
		// would retry; they never decide wrongly.
		fmt.Printf("liveness: %d of %d pairs undecided under this placement (edge-disjoint vs\n",
			out.Missing, out.Pairs)
		fmt.Println("node-disjoint paths; such pairs detect the loss and would re-broadcast)")
	} else {
		fmt.Println("interactive consistency holds: every fault-free node decided every")
		fmt.Println("fault-free proposer's true value")
	}

	// A single faulty node is *always* tolerated (it can block at most
	// one direction of each undirected cycle).
	one := fault.NewPlan(1)
	one.Nodes[7] = fault.Corrupt
	o1, err := reliable.EvaluateIHC(x, one, true, kr)
	if err != nil {
		log.Fatal(err)
	}
	if o1.Correct != o1.Pairs {
		log.Fatal("single-fault tolerance violated")
	}
	fmt.Println("guaranteed case: one faulty relay never disturbs any fault-free pair")

	// Contrast: the same fault plan without signatures. With t beyond
	// the Dolev bound, unsigned majority voting can be defeated.
	u, err := reliable.EvaluateIHC(x, plan, false, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without signatures the same faults leave only %.1f%% of pairs correct (%d wrong, %d undecided)\n",
		100*u.CorrectFraction(), u.Wrong, u.Missing)
	if u.Correct == u.Pairs {
		fmt.Println("(this particular placement did not defeat majority voting; more corrupt relays would)")
	}

	// And a two-faced proposer: signed receivers detect the inconsistency.
	twoFaced := fault.NewPlan(9)
	twoFaced.Nodes[3] = fault.Byzantine
	o, err := reliable.EvaluateIHC(x, twoFaced, true, kr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-faced proposer (node 3): fault-free pairs all correct: %v\n", o.Correct == o.Pairs)
	_ = topology.Node(0)
}
