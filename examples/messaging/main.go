// Messaging: the "practical issues" layer — packet format, fragmentation,
// and message reconstruction (the paper's Section VII) — doing a complete
// application-level exchange: every node broadcasts a variable-length,
// signed status report; every node reconstructs all of them.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ihc"
	"ihc/internal/message"
	"ihc/internal/reliable"
)

func main() {
	x, err := ihc.NewHexMesh(3) // the 19-node HARTS configuration
	if err != nil {
		log.Fatal(err)
	}
	n := x.N()
	p := ihc.DefaultParams()
	p.Mu = 1         // η = μ = 1: N = 19 is odd, so η = 2 would have a wrap seam
	const bFIFO = 64 // receiver FIFO bytes; packet = μ·B_FIFO = 64 bytes

	kr := reliable.NewKeyring(n, 1234)
	capacity := message.PayloadCapacity(p.Mu, bFIFO, true)
	fmt.Printf("packet: %d bytes = %d header + %d payload + %d MAC\n",
		p.Mu*bFIFO, message.HeaderSize, capacity, message.MACSize)

	// Every node authors a report; lengths vary so short senders pad.
	msgs := make([][]byte, n)
	for v := range msgs {
		msgs[v] = []byte(fmt.Sprintf("node %02d: temp=%dC, queue=%d, uptime=%d days — %s",
			v, 35+v%7, v*3%11, 100+v, bytes.Repeat([]byte("ok "), v%5+1)))
	}

	res, err := message.Broadcast(x, msgs, p, 1, bFIFO, kr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange: %d rounds of IHC ATA broadcast, %d ticks total, %d contentions, %d rejected copies\n",
		res.Rounds, res.Finish, res.Contentions, res.Rejected)

	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			if v == s {
				continue
			}
			if !bytes.Equal(res.Messages[v][s], msgs[s]) {
				log.Fatalf("node %d reconstructed node %d's report incorrectly", v, s)
			}
		}
	}
	fmt.Printf("verified: all %d nodes reconstructed all %d reports exactly (γ=%d redundant copies per fragment)\n",
		n, n, x.Gamma())
	fmt.Printf("sample, as seen by node 7: %q\n", res.Messages[7][0])
}
