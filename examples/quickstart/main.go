// Quickstart: run the IHC all-to-all reliable broadcast on a hypercube
// and verify the paper's three headline properties — contention-free
// operation, the closed-form execution time, and γ-redundant delivery.
package main

import (
	"fmt"
	"log"

	"ihc"
)

func main() {
	// A dimension-6 hypercube: N = 64 nodes, degree (and γ) = 6, three
	// undirected edge-disjoint Hamiltonian cycles constructed by the
	// paper's Theorem 1 and verified on the spot.
	x, err := ihc.NewHypercube(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s, γ = %d directed Hamiltonian cycles\n", x.Graph(), x.Gamma())

	p := ihc.DefaultParams() // τ_S=100, α=20, μ=2, D=37 ticks
	const eta = 2            // interleaving distance η = μ

	res, err := x.Run(ihc.Config{Eta: eta, Params: p})
	if err != nil {
		log.Fatal(err)
	}

	n := ihc.Time(x.N())
	want := eta * (p.TauS + ihc.Time(p.Mu)*p.Alpha + (n-2)*p.Alpha)
	fmt.Printf("finish:        %d ticks (Table II closed form: η(τ_S+μα+(N-2)α) = %d)\n", res.Finish, want)
	fmt.Printf("packets:       %d injected, %d copies delivered (γN(N-1))\n", res.Injections, res.Deliveries)
	fmt.Printf("cut-throughs:  %d of %d relays (100%% — the IHC property)\n",
		res.CutThroughs, res.CutThroughs+res.BufferedHops)
	fmt.Printf("contentions:   %d (η >= μ ⇒ no two packets ever contend for a link)\n", res.Contentions)

	if res.Contentions != 0 || res.Finish != want {
		log.Fatal("quickstart: IHC invariants violated")
	}
	if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified:      every node received exactly %d copies of every other node's message,\n", x.Gamma())
	fmt.Printf("               one per directed Hamiltonian cycle, over edge-disjoint links\n")
}
