// Clock synchronization over ATA reliable broadcast — one of the paper's
// motivating applications (Section I cites Krishna/Shin/Butler and
// Lamport/Melliar-Smith).
//
// Every node holds a local clock with bounded skew. In each
// synchronization round, all nodes broadcast their clock reading with the
// IHC algorithm; every node then applies the classic fault-tolerant
// averaging function: sort the N readings, discard the t highest and t
// lowest (so that values forged by up to t Byzantine nodes cannot drag
// the average outside the range of correct readings), and adopt the mean
// of the rest. Faulty nodes report wildly wrong clocks; the example shows
// the fault-free nodes' skew collapsing anyway.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ihc"
	"ihc/internal/fault"
	"ihc/internal/topology"
)

const (
	meshSize   = 4    // SQ4: 16 nodes, γ = 4
	rounds     = 4    // synchronization rounds
	tByzantine = 1    // faulty clocks (t <= Dolev bound for γ=4 unsigned)
	initSkew   = 1000 // initial clock skew, µs
)

func main() {
	x, err := ihc.NewSquareTorus(meshSize)
	if err != nil {
		log.Fatal(err)
	}
	n := x.N()
	rng := rand.New(rand.NewSource(7))

	// Initial clocks: a common base plus bounded per-node skew.
	clocks := make([]float64, n)
	for i := range clocks {
		clocks[i] = 1_000_000 + rng.Float64()*initSkew
	}
	// Byzantine nodes (their clocks are graded out of the skew metric).
	plan, err := fault.RandomNodeFaults(n, tByzantine, fault.Byzantine, 3)
	if err != nil {
		log.Fatal(err)
	}
	isFaulty := func(v int) bool { return plan.Node(topology.Node(v)) != fault.Healthy }
	fmt.Printf("network %s, %d Byzantine node(s): %v\n", x.Graph(), tByzantine, plan.FaultyNodes())
	fmt.Printf("round  max skew among fault-free nodes (µs)\n")
	fmt.Printf("  0    %.2f\n", skew(clocks, isFaulty))

	for r := 1; r <= rounds; r++ {
		// The ATA reliable broadcast distributes all clock readings. The
		// IHC run itself is validated (γ copies everywhere); the fault
		// plan then decides what each receiver's copies look like.
		res, err := x.Run(ihc.Config{Eta: 2, Params: ihc.DefaultParams()})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Copies.VerifyATA(x.Gamma()); err != nil {
			log.Fatal(err)
		}

		// Each fault-free node assembles the readings it can trust: a
		// faulty source's value is arbitrary (modeled as an outlier); a
		// fault-free source's value arrives intact thanks to the γ-copy
		// redundancy (verified above).
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			if isFaulty(v) {
				next[v] = clocks[v] // faulty nodes do whatever
				continue
			}
			readings := make([]float64, 0, n)
			for s := 0; s < n; s++ {
				val := clocks[s]
				if isFaulty(s) {
					// Byzantine clock: arbitrary per receiver.
					val = clocks[s] + (rng.Float64()-0.5)*1e6
				}
				readings = append(readings, val)
			}
			next[v] = faultTolerantAverage(readings, tByzantine)
		}
		clocks = next
		fmt.Printf("  %d    %.2f\n", r, skew(clocks, isFaulty))
	}

	if s := skew(clocks, isFaulty); s > 0.1 {
		log.Fatalf("clocks did not converge: skew %.4f µs", s)
	}
	fmt.Println("fault-free clocks converged despite Byzantine readings")
}

// faultTolerantAverage discards the t lowest and t highest readings and
// averages the remainder.
func faultTolerantAverage(readings []float64, t int) float64 {
	sort.Float64s(readings)
	trimmed := readings[t : len(readings)-t]
	sum := 0.0
	for _, v := range trimmed {
		sum += v
	}
	return sum / float64(len(trimmed))
}

// skew returns max-min over fault-free nodes.
func skew(clocks []float64, isFaulty func(int) bool) float64 {
	lo, hi := 0.0, 0.0
	first := true
	for v, c := range clocks {
		if isFaulty(v) {
			continue
		}
		if first || c < lo {
			lo = c
		}
		if first || c > hi {
			hi = c
		}
		first = false
	}
	return hi - lo
}
