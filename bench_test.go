package ihc

// One benchmark per paper artifact: each BenchmarkTableN / BenchmarkFigN /
// BenchmarkTheorem4 / ... regenerates the corresponding table or figure
// through the experiment harness (quick sizes, so a full -bench=. pass
// stays fast); the experiments contain their own exact model-vs-measured
// assertions, so a passing benchmark is also a passing reproduction.
// Performance microbenchmarks for the substrate (simulator event rate,
// decomposition construction, full ATA runs) follow.

import (
	"testing"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/harness"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paper tables ---

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "table4") }

// --- Paper figures ---

func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "fig9") }

// --- Analysis artifacts ---

func BenchmarkTheorem4(b *testing.B)    { benchExperiment(b, "theorem4") }
func BenchmarkOverlap(b *testing.B)     { benchExperiment(b, "overlap") }
func BenchmarkHeadline(b *testing.B)    { benchExperiment(b, "headline") }
func BenchmarkCrossover(b *testing.B)   { benchExperiment(b, "crossover") }
func BenchmarkReliability(b *testing.B) { benchExperiment(b, "reliability") }
func BenchmarkLoad(b *testing.B)        { benchExperiment(b, "load") }
func BenchmarkUtilization(b *testing.B) { benchExperiment(b, "utilization") }

// --- Whole-suite runs: sequential vs parallel ---

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	cfg := harness.Config{Quick: true, Workers: workers, Stats: &harness.RunStats{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range harness.RunAll(cfg) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
	b.ReportMetric(float64(cfg.Stats.Events())/float64(b.N), "events/op")
}

// BenchmarkSuiteSequential regenerates every experiment one at a time;
// BenchmarkSuiteParallel fans them (and their inner sweep points) across
// the GOMAXPROCS-wide pool. Comparing the two shows the sweep executor's
// speedup on a multi-core machine; both produce identical tables.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B)   { benchSuite(b, 0) }

// --- Substrate performance ---

// BenchmarkDecomposeHypercube constructs and verifies the Theorem 1/2
// Hamiltonian decomposition of Q10 (1024 nodes, 5 cycles, including a
// Lemma 2 splice).
func BenchmarkDecomposeHypercube(b *testing.B) {
	g := topology.MustHypercube(10)
	for i := 0; i < b.N; i++ {
		cycles, err := hamilton.Hypercube(10)
		if err != nil {
			b.Fatal(err)
		}
		if err := hamilton.VerifyDecomposition(g, cycles, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIHCFullATA measures a complete simulated ATA reliable
// broadcast on Q8 (256 nodes, γ = 8: 522k tee deliveries per run) and
// reports simulator throughput.
func BenchmarkIHCFullATA(b *testing.B) {
	g := topology.MustHypercube(8)
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		b.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		b.Fatal(err)
	}
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	b.ResetTimer()
	var deliveries int
	for i := 0; i < b.N; i++ {
		res, err := x.Run(core.Config{Eta: 2, Params: p, SkipCopies: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Contentions != 0 {
			b.Fatal("contention in dedicated run")
		}
		deliveries = res.Deliveries
	}
	b.ReportMetric(float64(deliveries)*float64(b.N)/b.Elapsed().Seconds(), "deliveries/s")
}

// BenchmarkEngineQ10ATA is the engine's headline microbenchmark: one
// complete ATA reliable broadcast on Q10 (1024 nodes, γ = 10 directed
// cycles, ~10.5M simulator events per run), with the O(N²) copy matrix
// disabled so the measurement isolates the event loop. It reports
// events/sec and ns/event; `make bench-engine` records the numbers in
// BENCH_engine.json.
func BenchmarkEngineQ10ATA(b *testing.B) {
	g := topology.MustHypercube(10)
	cycles, err := hamilton.Hypercube(10)
	if err != nil {
		b.Fatal(err)
	}
	x, err := core.New(g, cycles)
	if err != nil {
		b.Fatal(err)
	}
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := x.Run(core.Config{Eta: 2, Params: p, SkipCopies: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Contentions != 0 {
			b.Fatal("contention in dedicated run")
		}
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(b.Elapsed().Seconds()*1e9/(float64(events)*float64(b.N)), "ns/event")
}

// BenchmarkSimnetPipeline measures raw event throughput: a full ring
// pipeline of 256 packets x 255 hops.
func BenchmarkSimnetPipeline(b *testing.B) {
	const n = 256
	g := topology.MustCycle(n)
	p := simnet.Params{TauS: 100, Alpha: 20, Mu: 2, D: 37}
	ring := make([]topology.Node, 2*n)
	for i := range ring {
		ring[i] = topology.Node(i % n)
	}
	specs := make([]simnet.PacketSpec, 0, n/2)
	for s := 0; s < n; s += 2 {
		specs = append(specs, simnet.PacketSpec{
			ID:    simnet.PacketID{Source: topology.Node(s)},
			Route: ring[s : s+n],
			Tee:   true,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := simnet.New(g, p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Run(specs, simnet.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Contentions != 0 {
			b.Fatal("unexpected contention")
		}
	}
	b.ReportMetric(float64(len(specs)*(n-1)), "hops/op")
}

// BenchmarkKSPatternSearch measures the rotation-disjoint spanning-tree
// search for the KS reconstruction on H8 (169 nodes).
func BenchmarkKSPatternSearch(b *testing.B) {
	// The pattern is cached per size; benchmark through the public
	// constructor on alternating sizes to defeat the cache fairly.
	for i := 0; i < b.N; i++ {
		benchKSSize(b, 6+(i%3))
	}
}

func benchKSSize(b *testing.B, m int) {
	b.Helper()
	g := topology.MustHexMesh(m)
	cycles, err := hamilton.HexMesh(m)
	if err != nil {
		b.Fatal(err)
	}
	if err := hamilton.VerifyDecomposition(g, cycles, true); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWormhole(b *testing.B) { benchExperiment(b, "wormhole") }
