// Package ihc is a production-quality Go implementation of Lee & Shin's
// IHC algorithm for interleaved all-to-all (ATA) reliable broadcast on
// meshes and hypercubes (ICPP 1990 / IEEE TPDS 1994), together with
// everything the paper's evaluation depends on: the class-Λ Hamiltonian
// cycle decompositions (Theorems 1-2), a virtual cut-through / wormhole /
// store-and-forward network simulator with the paper's exact timing
// model, the baseline algorithms it compares against (VRS-ATA, KS-ATA,
// VSQ-ATA, FRS), the closed-form analysis of Tables II-IV, and a
// fault-injection layer for the reliability claims.
//
// This file is the public facade. Quick start:
//
//	x, err := ihc.NewHypercube(6)            // Q6: 64 nodes, γ = 6
//	res, err := x.Run(ihc.Config{
//	        Eta:    2,                        // interleaving distance η
//	        Params: ihc.DefaultParams(),      // τ_S, α, μ, D
//	})
//	// res.Finish == η(τ_S + μα + (N-2)α); res.Contentions == 0;
//	// res.Copies.VerifyATA(6) == nil: every node holds 6 copies of
//	// every other node's message, one per directed Hamiltonian cycle.
//
// The deeper layers are importable by code in this module:
// internal/topology (graphs), internal/hamilton (HC decompositions),
// internal/simnet (the simulator), internal/core (the algorithm),
// internal/baseline/* (the competing algorithms), internal/model (the
// closed forms), internal/reliable and internal/fault (fault tolerance),
// and internal/harness (the experiment suite reproducing every table and
// figure of the paper).
package ihc

import (
	"fmt"

	"ihc/internal/core"
	"ihc/internal/hamilton"
	"ihc/internal/simnet"
	"ihc/internal/topology"
)

// Re-exported types: the facade's vocabulary is the core and simulator
// vocabulary.
type (
	// IHC is a ready-to-run instance of the algorithm on one network.
	IHC = core.IHC
	// Config selects η, timing parameters, and execution options.
	Config = core.Config
	// Result reports times, contention and delivery counters.
	Result = core.Result
	// Params is the network timing model (τ_S, α, μ, D, mode, ρ).
	Params = simnet.Params
	// Time is simulated time in ticks.
	Time = simnet.Time
	// Graph is an undirected interconnection network.
	Graph = topology.Graph
	// Node identifies a network node.
	Node = topology.Node
	// Cycle is a Hamiltonian cycle as a node sequence.
	Cycle = hamilton.Cycle
)

// DefaultParams returns the timing parameters used throughout the
// repository's experiments: τ_S = 100, α = 20, μ = 2, D = 37 ticks,
// virtual cut-through switching, no background load.
func DefaultParams() Params {
	return Params{TauS: 100, Alpha: 20, Mu: 2, D: 37, Mode: simnet.VirtualCutThrough}
}

// HeadlineParams returns the paper's Section VI constants at 1 tick =
// 1 ns: Dally's α = 20 ns cut-through time and τ_S = 0.5 ms.
func HeadlineParams() Params {
	return Params{TauS: 500_000, Alpha: 20, Mu: 2}
}

// New builds an IHC instance for any supported class-Λ network by
// constructing and verifying its Hamiltonian decomposition. Supported
// graphs are those produced by Hypercube, SquareTorus and HexMesh (the
// decomposition is dispatched on the graph's family).
func New(g *Graph) (*IHC, error) {
	cycles, err := hamilton.Decompose(g)
	if err != nil {
		return nil, err
	}
	return core.New(g, cycles)
}

// NewWithCycles builds an IHC instance from an explicit set of
// edge-disjoint Hamiltonian cycles, for networks outside the built-in
// families. The cycles are fully verified.
func NewWithCycles(g *Graph, cycles []Cycle) (*IHC, error) {
	return core.New(g, cycles)
}

// NewHypercube returns the algorithm on the m-dimensional binary
// hypercube Q_m (m >= 2). Even m uses all links (γ = m); odd m leaves one
// perfect matching unused (γ = m-1), per the paper.
func NewHypercube(m int) (*IHC, error) {
	if m < 2 {
		return nil, fmt.Errorf("ihc: hypercube dimension must be >= 2, got %d", m)
	}
	g, err := topology.Hypercube(m)
	if err != nil {
		return nil, err
	}
	return New(g)
}

// NewSquareTorus returns the algorithm on the m x m torus-wrapped square
// mesh SQ_m (m >= 3), γ = 4.
func NewSquareTorus(m int) (*IHC, error) {
	if m < 3 {
		return nil, fmt.Errorf("ihc: square torus size must be >= 3, got %d", m)
	}
	g, err := topology.SquareTorus(m)
	if err != nil {
		return nil, err
	}
	return New(g)
}

// NewHexMesh returns the algorithm on the C-wrapped hexagonal mesh H_m
// (m >= 2, N = 3m(m-1)+1 nodes), γ = 6.
func NewHexMesh(m int) (*IHC, error) {
	if m < 2 {
		return nil, fmt.Errorf("ihc: hex mesh size must be >= 2, got %d", m)
	}
	g, err := topology.HexMesh(m)
	if err != nil {
		return nil, err
	}
	return New(g)
}

// NewTorusND returns the algorithm on the d-dimensional torus
// C_k1 x ... x C_kd (each ki >= 3), γ = 2d — the general "regular mesh"
// of class Λ, decomposed into d Hamiltonian cycles by the generalized
// Lemma 2 (Foregger's theorem). See hamilton.MultiTorus for the
// dimension mixes the constructive engine supports.
func NewTorusND(dims ...int) (*IHC, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("ihc: torus needs at least one dimension")
	}
	for _, k := range dims {
		if k < 3 {
			return nil, fmt.Errorf("ihc: torus dimensions must be >= 3, got %v", dims)
		}
	}
	g, err := topology.TorusND(dims...)
	if err != nil {
		return nil, err
	}
	return New(g)
}
