# Stdlib-only Go module; every target needs nothing but the go toolchain.

GO ?= go

.PHONY: all build test race vet bench bench-engine bench-fault fuzz smoke-engine recovery-quick verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# Re-measure the engine's headline Q10 ATA microbenchmark and record
# events/sec, ns/event, and allocs/event (with the pre-flat-array
# baseline for comparison) in BENCH_engine.json.
bench-engine:
	$(GO) run ./cmd/enginebench -o BENCH_engine.json

# Run the adversarial fault campaign over sq4,q4,q6,h3 and record the
# measured tolerance frontier per topology plus campaign throughput
# (placements/s) in BENCH_fault.json. Exits non-zero if any placement
# at or under the paper's link-domain bounds breaks delivery.
bench-fault:
	$(GO) run ./cmd/faultcamp -o BENCH_fault.json

# Short fuzz smoke over the voter, the MAC verify path, and the
# temporal-plan validator/compiler (the spots that take adversarial
# bytes or adversarial plans), mirroring the CI budget.
fuzz:
	$(GO) test -fuzz=FuzzVoteUnsigned -fuzztime=15s ./internal/reliable
	$(GO) test -fuzz=FuzzKeyringVerify -fuzztime=15s ./internal/reliable
	$(GO) test -fuzz=FuzzTemporalPlan -fuzztime=15s ./internal/fault

# Engine-regression smoke: one measured Q10 ATA run; fails if
# allocs/event exceeds 10x the value recorded in BENCH_engine.json
# (the event loop must stay allocation-free even with the repair
# controller layer compiled in).
smoke-engine:
	$(GO) run ./cmd/enginebench -quick -check -o /dev/null

# Quick self-healing sweep: the repaired broken-link frontier must beat
# the static γ bound on every topology (exits non-zero otherwise).
recovery-quick:
	$(GO) run ./cmd/ihcbench -quick -run recovery

# The tier-1 gate: vet + build + tests, then the same tests under the
# race detector (the parallel sweep executor must stay race-clean),
# then the engine-allocation smoke and the quick recovery sweep.
verify: vet build test race smoke-engine recovery-quick
