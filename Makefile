# Stdlib-only Go module; every target needs nothing but the go toolchain.

GO ?= go

.PHONY: all build test race vet bench bench-engine bench-fault fuzz smoke-engine sharded-quick recovery-quick oracle-quick families-quick transport-quick soak-quick q14-smoke verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# Re-measure the engine's headline Q10 ATA microbenchmark and record
# events/sec, ns/event, allocs/event, and live-heap footprint (with the
# pre-flat-array baseline for comparison) in BENCH_engine.json, plus
# the sharded engine's multi-core scaling series at 1/2/4/8 workers
# (each point re-checks event-count determinism against the sequential
# run, records the GOMAXPROCS it ran under — raised to the worker count
# when the host has the cores — and is annotated cores_limited when it
# does not).
bench-engine:
	$(GO) run ./cmd/enginebench -o BENCH_engine.json -engine-workers 1,2,4,8

# Run the adversarial fault campaign over sq4,q4,q6,h3 and record the
# measured tolerance frontier per topology plus campaign throughput
# (placements/s) in BENCH_fault.json. Exits non-zero if any placement
# at or under the paper's link-domain bounds breaks delivery.
bench-fault:
	$(GO) run ./cmd/faultcamp -o BENCH_fault.json

# Short fuzz smoke over the voter, the MAC verify path, the
# temporal-plan validator/compiler (the spots that take adversarial
# bytes or adversarial plans), the metrics merge (worker-count
# independence of the observability aggregates), the calendar queue
# (differential pop-order equivalence against the reference heap), the
# transport wire codec (decode never panics, accepted frames re-encode
# canonically), and the decomposition registry (family constructors
# never panic on arbitrary parameters; valid instances build and their
# names round-trip), mirroring the CI budget.
fuzz:
	$(GO) test -fuzz=FuzzVoteUnsigned -fuzztime=15s ./internal/reliable
	$(GO) test -fuzz=FuzzKeyringVerify -fuzztime=15s ./internal/reliable
	$(GO) test -fuzz=FuzzTemporalPlan -fuzztime=15s ./internal/fault
	$(GO) test -fuzz=FuzzMetricsMerge -fuzztime=15s ./internal/observe
	$(GO) test -fuzz=FuzzCalendarQueue -fuzztime=15s ./internal/simnet
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=15s ./internal/transport
	$(GO) test -fuzz=FuzzFamilyParams -fuzztime=15s ./internal/hamilton

# Engine-regression smoke: one measured Q10 ATA run; fails if
# allocs/event exceeds 10x, or ns/event exceeds 1.15x (best of three
# runs, damping single-run noise), the values recorded in
# BENCH_engine.json — the event loop must stay allocation-free and
# calendar-queue fast even with the repair controller layer compiled in.
smoke-engine:
	$(GO) run ./cmd/enginebench -quick -check -o /dev/null

# Quick sharded-engine equivalence: the scaling experiment's quick
# points, once sequential, once sharded across 4 goroutines on the
# default GOMAXPROCS, and once sharded with GOMAXPROCS=4 (true
# multi-core interleavings when the host has the cores), must all
# render byte-identical tables (stderr carries the wall-clock line and
# is discarded); then the engine equivalence/aliasing tests re-run
# under the race detector, also at GOMAXPROCS=4.
sharded-quick:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/ihcbench -quick -run scaling >$$tmp/seq.txt 2>/dev/null; \
	$(GO) run ./cmd/ihcbench -quick -run scaling -engine-workers 4 >$$tmp/shard.txt 2>/dev/null; \
	GOMAXPROCS=4 $(GO) run ./cmd/ihcbench -quick -run scaling -engine-workers 4 >$$tmp/shard4.txt 2>/dev/null; \
	if cmp -s $$tmp/seq.txt $$tmp/shard.txt && cmp -s $$tmp/seq.txt $$tmp/shard4.txt; then \
		echo "sharded-quick: sharded output byte-identical to sequential (incl. GOMAXPROCS=4)"; rm -rf $$tmp; \
	else \
		echo "sharded-quick: sharded output DIVERGED from sequential:"; \
		diff $$tmp/seq.txt $$tmp/shard.txt; diff $$tmp/seq.txt $$tmp/shard4.txt; rm -rf $$tmp; exit 1; \
	fi
	$(GO) test -race -run 'Sharded|ScratchReuse|CompiledPath|BackgroundSeed|Ledger|CalQueue' ./internal/simnet ./internal/core
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'Sharded|Ledger' ./internal/simnet ./internal/core

# Quick self-healing sweep: the repaired broken-link frontier must beat
# the static γ bound on every topology (exits non-zero otherwise).
recovery-quick:
	$(GO) run ./cmd/ihcbench -quick -run recovery

# Quick oracle sweep: the live theorem checker verifies contention-
# freeness / occupancy / routes / exact finishes on the small
# topologies (η >= μ must pass, η < μ must be flagged), then one
# deliberate η < μ strict run that MUST exit non-zero — proving the
# checker fails loudly, not silently.
oracle-quick:
	$(GO) run ./cmd/ihcbench -quick -run contention
	@if $(GO) run ./cmd/atasim -net SQ4 -algo ihc -eta 1 -oracle-strict >/dev/null 2>&1; then \
		echo "oracle-quick: strict oracle FAILED to reject an η < μ run"; exit 1; \
	else \
		echo "oracle-quick: strict oracle correctly rejected the η < μ run"; \
	fi

# Quick family-registry gate: the cross-family conformance suite
# (every registered family's instances through build validity, static
# contention-freeness, exact live-oracle finish, γ-copy postcondition,
# and sharded byte-identity), one quick adversarial campaign point on
# the new families (TQ4 + the 4-ary 2-torus), and the quick `families`
# experiment (IHC finish vs the Table II closed form on twisted cubes
# and vs the Jung-Sakho per-link load bound on k-ary tori).
families-quick:
	$(GO) test -count=1 -run TestCrossFamilyConformance ./internal/hamilton
	$(GO) run ./cmd/faultcamp -quick -topo tq4,kt4x2 -o /dev/null
	$(GO) run ./cmd/ihcbench -quick -run families

# Counters-only Q14 full-ATA smoke: the paper-scale memory-boundedness
# check. The O(N) copy ledger replaces both the O(N²) matrix and the
# O(events) delivery log, so the ~3.8e9-event run holds a bounded
# resident heap (reported on exit) while still verifying the exact
# γ-copies Theorem 4 postcondition. Takes a few minutes of single-core
# time; deliberately not part of `verify`.
q14-smoke:
	$(GO) run ./cmd/atasim -net Q14 -algo ihc -eta 2 -ledger

# Real-transport smoke: first the transport/cluster/repair unit tests
# under the race detector (jittered backoff, breaker transitions, the
# peer-dies-and-reconnects NAK path, and the in-process loopback + TCP
# chaos rounds), then the multi-process check — `ihcd -launch` boots 8
# real ihcd daemons as separate OS processes on a Q3 overlay with a
# socket-level chaos proxy on every link, SIGKILLs node 6 mid-round,
# partitions link {1,3}, and requires every survivor's counters-only
# ledger to show the exact γ-copy postcondition plus a clean (exit 0)
# SIGTERM shutdown; the -faultfree leg additionally requires the
# wall-clock delivery multiset to equal the discrete-event engine's.
transport-quick:
	$(GO) test -race -count=1 ./internal/transport ./internal/cluster ./internal/repair ./internal/hlc
	$(GO) run ./cmd/ihcd -launch
	$(GO) run ./cmd/ihcd -launch -faultfree

# Quick streaming soak (≤60s wall, usually ~4s): a Q3 loopback cluster
# streams 24 pipelined epochs through the bounded ingress queues while
# the chaos layer drops/dups/corrupts/delays frames, node 6 is killed
# mid-stream and cold-restarts into the epoch-resume handshake, and
# link {1,3} is partitioned for a window. The verdict requires every
# survivor to hold the exact γ-copy ledger postcondition on every
# epoch, the rejoiner to catch up all missed epochs, and zero
# high-priority sheds; the watchdog turns a hang into exit 4 instead
# of a stuck CI job.
soak-quick:
	$(GO) run ./cmd/ihcd -soak -deadline 60s

# The tier-1 gate: vet + build + tests, then the same tests under the
# race detector (the parallel sweep executor must stay race-clean),
# then the engine-allocation smoke, the sharded-engine equivalence
# smoke, the quick recovery sweep, the quick oracle sweep, the quick
# family-registry gate, the real-transport multi-process smoke, and
# the streaming chaos soak.
verify: vet build test race smoke-engine sharded-quick recovery-quick oracle-quick families-quick transport-quick soak-quick
