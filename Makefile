# Stdlib-only Go module; every target needs nothing but the go toolchain.

GO ?= go

.PHONY: all build test race vet bench verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# The tier-1 gate: vet + build + tests, then the same tests under the
# race detector (the parallel sweep executor must stay race-clean).
verify: vet build test race
