# Stdlib-only Go module; every target needs nothing but the go toolchain.

GO ?= go

.PHONY: all build test race vet bench bench-engine verify

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# Re-measure the engine's headline Q10 ATA microbenchmark and record
# events/sec, ns/event, and allocs/event (with the pre-flat-array
# baseline for comparison) in BENCH_engine.json.
bench-engine:
	$(GO) run ./cmd/enginebench -o BENCH_engine.json

# The tier-1 gate: vet + build + tests, then the same tests under the
# race detector (the parallel sweep executor must stay race-clean).
verify: vet build test race
